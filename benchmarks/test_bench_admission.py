"""Ext-E: admission-control scalability — UBAC vs flow-aware.

The paper's core argument: utilization-based admission is O(path length)
and independent of how many flows are established, while IntServ-style
flow-aware admission recomputes a network-wide analysis whose cost grows
with the population.  The bench measures a single admission decision at
several standing populations for both controllers.
"""

import pytest

from repro.admission import (
    FlowAwareAdmissionController,
    UtilizationAdmissionController,
)
from repro.traffic import FlowSpec

POPULATIONS_UBAC = [100, 1000, 5000]
POPULATIONS_FLOW_AWARE = [10, 40, 80]


def _populate(controller, scenario, count):
    pairs = scenario.pairs
    for i in range(count):
        pair = pairs[i % len(pairs)]
        decision = controller.admit(
            FlowSpec(f"bg{i}", "voice", pair[0], pair[1])
        )
        assert decision.admitted
    return controller


def _probe_flow(scenario):
    return FlowSpec("probe", "voice", "Seattle", "Miami")


@pytest.mark.parametrize("population", POPULATIONS_UBAC)
def test_bench_ubac_decision(benchmark, scenario, sp_routes, population):
    ctrl = UtilizationAdmissionController(
        scenario.graph, scenario.registry, {"voice": 0.45}, sp_routes
    )
    _populate(ctrl, scenario, population)
    flow = _probe_flow(scenario)

    def decide():
        decision = ctrl.admit(flow)
        ctrl.release(flow.flow_id)
        return decision

    decision = benchmark(decide)
    assert decision.admitted


@pytest.mark.parametrize("population", POPULATIONS_FLOW_AWARE)
def test_bench_flow_aware_decision(benchmark, scenario, sp_routes,
                                   population):
    ctrl = FlowAwareAdmissionController(
        scenario.graph, scenario.registry, sp_routes
    )
    _populate(ctrl, scenario, population)
    flow = _probe_flow(scenario)

    def decide():
        decision = ctrl.admit(flow)
        ctrl.release(flow.flow_id)
        return decision

    decision = benchmark.pedantic(decide, rounds=3, iterations=1)
    assert decision.admitted


def test_bench_scalability_contrast(benchmark, scenario, sp_routes, capsys):
    """Direct contrast: decision latency growth from small to large
    populations for both architectures (measured inline, printed)."""
    import time

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def mean_decision(ctrl, population, probes):
        _populate(ctrl, scenario, population)
        flow = _probe_flow(scenario)
        start = time.perf_counter()
        for _ in range(probes):
            ctrl.admit(flow)
            ctrl.release(flow.flow_id)
        return (time.perf_counter() - start) / probes

    ubac_small = mean_decision(
        UtilizationAdmissionController(
            scenario.graph, scenario.registry, {"voice": 0.45}, sp_routes
        ),
        50,
        200,
    )
    ubac_large = mean_decision(
        UtilizationAdmissionController(
            scenario.graph, scenario.registry, {"voice": 0.45}, sp_routes
        ),
        5000,
        200,
    )
    fa_small = mean_decision(
        FlowAwareAdmissionController(
            scenario.graph, scenario.registry, sp_routes
        ),
        10,
        3,
    )
    fa_large = mean_decision(
        FlowAwareAdmissionController(
            scenario.graph, scenario.registry, sp_routes
        ),
        80,
        3,
    )
    with capsys.disabled():
        print()
        print("decision latency (mean):")
        print(f"  UBAC        pop=  50: {ubac_small * 1e6:8.1f} us")
        print(f"  UBAC        pop=5000: {ubac_large * 1e6:8.1f} us")
        print(f"  flow-aware  pop=  10: {fa_small * 1e3:8.2f} ms")
        print(f"  flow-aware  pop=  80: {fa_large * 1e3:8.2f} ms")
        print(
            f"  flow-aware growth: {fa_large / fa_small:.1f}x; "
            f"UBAC growth: {ubac_large / max(ubac_small, 1e-12):.1f}x"
        )
    # The qualitative claim: flow-aware cost grows markedly with the
    # population; UBAC stays within noise (allow generous slack).
    assert fa_large > 2 * fa_small
    assert ubac_large < 10 * ubac_small
    # And the architectures differ by orders of magnitude at scale.
    assert fa_large > 50 * ubac_large
