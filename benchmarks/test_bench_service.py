"""The service bench harness and its checked-in snapshot are valid.

Mirrors ``test_bench_summary_schema.py``: the ``BENCH_service.json``
snapshot must stay a compact ``repro-bench-summary/v1`` document that
clears the micro-batching acceptance floor, and the harness itself must
produce valid entries when run at smoke scale (CI runs these with
``--benchmark-disable``; no timings are asserted).
"""

import json
import pathlib

from run_baseline import SUMMARY_SCHEMA, validate_summary
from run_service_bench import (
    FLOOR_NAME,
    MAX_TELEMETRY_OFF_REGRESSION,
    MIN_SPEEDUP_AT_1024,
    MIN_TELEMETRY_ON_RETENTION,
    SPEEDUP_CELL,
    TELEMETRY_OFF_NAME,
    TELEMETRY_ON_NAME,
    cell_name,
    make_entry,
    measure,
    measure_telemetry,
    validate_service_summary,
)

SNAPSHOT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_service.json"


def test_checked_in_snapshot_is_valid():
    data = json.loads(SNAPSHOT.read_text())
    assert validate_service_summary(data) == []
    assert validate_summary(data) == []
    assert data["schema"] == SUMMARY_SCHEMA
    assert data["service"]["speedup_at_1024"] >= MIN_SPEEDUP_AT_1024


def test_snapshot_has_the_full_matrix():
    data = json.loads(SNAPSHOT.read_text())
    names = {bench["name"] for bench in data["benchmarks"]}
    assert FLOOR_NAME in names
    assert SPEEDUP_CELL in names
    assert TELEMETRY_OFF_NAME in names
    assert TELEMETRY_ON_NAME in names
    # 3 windows x 3 loads + the floor + the telemetry on/off pair.
    assert len(names) == 12
    for bench in data["benchmarks"]:
        assert bench["rps"] > 0
        assert bench["p99_ms"] >= bench["p50_ms"]


def test_snapshot_telemetry_overhead_is_within_budget():
    service = json.loads(SNAPSHOT.read_text())["service"]
    assert (
        service["telemetry_off_regression"]
        <= MAX_TELEMETRY_OFF_REGRESSION
    )
    assert (
        service["telemetry_on_retention"] >= MIN_TELEMETRY_ON_RETENTION
    )
    assert service["telemetry_on_rps"] <= service["telemetry_off_rps"]


def test_smoke_run_produces_a_valid_entry():
    run = measure(150, depth=32, delay_ms=1.0, tag="smoke")
    assert len(run["latencies"]) == 150
    assert run["batches"] >= 1
    assert 1 <= run["largest_batch"] <= 32
    entry = make_entry(
        cell_name(1.0, 32), run, depth=32, delay_ms=1.0
    )
    summary = {
        "schema": SUMMARY_SCHEMA,
        "benchmarks": [entry],
    }
    assert validate_summary(summary) == []
    assert entry["rps"] > 0
    assert entry["p99_ms"] >= entry["p50_ms"] > 0


def test_smoke_telemetry_run_measures_both_modes():
    off = measure_telemetry(60, telemetry=False, repeats=1)
    on = measure_telemetry(60, telemetry=True, repeats=1)
    assert len(off["latencies"]) == len(on["latencies"]) == 60
    # Telemetry-on must leave the global switchboard off afterwards.
    from repro.obs import OBS

    assert OBS.enabled is False


def test_validator_rejects_a_missed_floor():
    data = json.loads(SNAPSHOT.read_text())
    data["service"]["speedup_at_1024"] = MIN_SPEEDUP_AT_1024 / 2
    problems = validate_service_summary(data)
    assert any("speedup_at_1024" in p for p in problems)


def test_validator_rejects_a_blown_telemetry_budget():
    data = json.loads(SNAPSHOT.read_text())
    data["service"]["telemetry_off_regression"] = (
        2 * MAX_TELEMETRY_OFF_REGRESSION
    )
    problems = validate_service_summary(data)
    assert any("telemetry-off" in p for p in problems)

    data = json.loads(SNAPSHOT.read_text())
    data["service"]["telemetry_on_retention"] = (
        MIN_TELEMETRY_ON_RETENTION / 2
    )
    problems = validate_service_summary(data)
    assert any("full telemetry" in p for p in problems)


def test_validator_rejects_a_missing_cell():
    data = json.loads(SNAPSHOT.read_text())
    data["benchmarks"] = [
        b for b in data["benchmarks"] if b["name"] != SPEEDUP_CELL
    ]
    problems = validate_service_summary(data)
    assert any(SPEEDUP_CELL in p for p in problems)
