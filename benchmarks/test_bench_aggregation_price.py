"""Ext-O: the price of flow aggregation.

The gap between the per-hop-reshaping bound (which needs per-flow state
at every core server — the IntServ world) and the paper's aggregated
bounds (stateless core — the DiffServ world) quantifies what scalability
costs in certifiable utilization, across the deadline axis.
"""

import pytest

from repro.analysis import reshaped_max_alpha
from repro.config import theorem4_lower_bound, theorem4_upper_bound
from repro.experiments import format_table

PAPER = dict(fan_in=6, diameter=4, burst=640.0, rate=32_000.0)
DEADLINES = (0.005, 0.01, 0.02, 0.05, 0.1, 0.2)


def test_bench_aggregation_price(benchmark, capsys):
    def compute():
        rows = []
        for d in DEADLINES:
            lb = theorem4_lower_bound(deadline=d, **PAPER)
            ub = theorem4_upper_bound(deadline=d, **PAPER)
            shaped = reshaped_max_alpha(deadline=d, **PAPER)
            rows.append((d, lb, ub, shaped))
        return rows

    rows = benchmark(compute)
    with capsys.disabled():
        print()
        print(
            format_table(
                ["deadline", "aggregated LB", "aggregated UB",
                 "per-hop reshaping", "aggregation price"],
                [
                    [
                        f"{d * 1e3:.0f} ms",
                        f"{lb:.3f}",
                        f"{ub:.3f}",
                        f"{shaped:.3f}",
                        f"{(shaped - ub) * 100:.0f} pts",
                    ]
                    for d, lb, ub, shaped in rows
                ],
                title=(
                    "Ext-O: certifiable utilization, stateless core vs "
                    "per-flow reshaping (VoIP class)"
                ),
            )
        )
    for d, lb, ub, shaped in rows:
        assert lb <= ub <= shaped + 1e-12
    # At the paper's operating point the price is large (~0.39 of a link).
    d, lb, ub, shaped = rows[DEADLINES.index(0.1)]
    assert shaped - ub > 0.3
