#!/usr/bin/env python
"""Snapshot routing/analysis benchmark timings to ``BENCH_routing.json``.

Runs the configuration-time hot-path benchmarks under pytest-benchmark
and stores the raw JSON report so later changes have a perf trajectory
to compare against::

    python benchmarks/run_baseline.py                 # -> BENCH_routing.json
    python benchmarks/run_baseline.py --output other.json
    python benchmarks/run_baseline.py --compare BENCH_routing.json

``--compare`` prints the mean-time ratio per benchmark against a previous
snapshot instead of overwriting it.  The JSON is the standard
pytest-benchmark format (``benchmarks[].name`` / ``.stats.mean``), so
``pytest-benchmark compare`` works on it too.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

#: The benches that exercise the configuration-time pipeline this file
#: tracks: Table 1 searches, the heuristic ablation, and the fixed-point
#: solver kernels.
ROUTING_BENCHES = (
    "benchmarks/test_bench_table1.py",
    "benchmarks/test_bench_heuristic_ablation.py",
    "benchmarks/test_bench_fixedpoint.py",
    "benchmarks/test_bench_routing_strategies.py",
)


def run_snapshot(output: pathlib.Path, benches) -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    cmd = [
        sys.executable, "-m", "pytest", *benches, "-q",
        f"--benchmark-json={output}",
    ]
    print("+", " ".join(cmd))
    result = subprocess.run(cmd, cwd=REPO, env=env)
    if result.returncode == 0:
        report = json.loads(output.read_text())
        print(f"wrote {output} ({len(report['benchmarks'])} benchmarks)")
    return result.returncode


def compare(snapshot: pathlib.Path, benches) -> int:
    baseline = {
        b["name"]: b["stats"]["mean"]
        for b in json.loads(snapshot.read_text())["benchmarks"]
    }
    fresh = snapshot.with_suffix(".current.json")
    code = run_snapshot(fresh, benches)
    if code != 0:
        return code
    current = {
        b["name"]: b["stats"]["mean"]
        for b in json.loads(fresh.read_text())["benchmarks"]
    }
    width = max(map(len, current), default=0)
    for name, mean in sorted(current.items()):
        base = baseline.get(name)
        if base:
            print(f"{name:<{width}}  {mean:10.4g}s  {base / mean:6.2f}x")
        else:
            print(f"{name:<{width}}  {mean:10.4g}s  (new)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default=str(REPO / "BENCH_routing.json"),
        help="snapshot path (default: BENCH_routing.json at the repo root)",
    )
    parser.add_argument(
        "--compare", metavar="SNAPSHOT", default=None,
        help="re-run and print speedups against a previous snapshot",
    )
    parser.add_argument(
        "benches", nargs="*", default=list(ROUTING_BENCHES),
        help="bench files to run (default: the routing/analysis set)",
    )
    args = parser.parse_args(argv)
    if args.compare:
        return compare(pathlib.Path(args.compare), args.benches)
    return run_snapshot(pathlib.Path(args.output), args.benches)


if __name__ == "__main__":
    raise SystemExit(main())
