#!/usr/bin/env python
"""Snapshot routing/analysis benchmark timings to ``BENCH_routing.json``.

Runs the configuration-time hot-path benchmarks under pytest-benchmark
and stores a **compact summary** (per-bench median/stddev/mean/rounds,
schema ``repro-bench-summary/v1``) so later changes have a perf
trajectory to compare against without a 60k-line raw report in the
tree::

    python benchmarks/run_baseline.py                 # -> BENCH_routing.json
    python benchmarks/run_baseline.py --output other.json
    python benchmarks/run_baseline.py --full          # raw pytest-benchmark JSON
    python benchmarks/run_baseline.py --compare BENCH_routing.json
    python benchmarks/run_baseline.py --validate BENCH_routing.json

``--compare`` re-runs and prints the median-time ratio per benchmark
against a previous snapshot (summary or raw format — both are
accepted).  ``--validate`` checks a summary file against the schema and
exits non-zero on any shape violation; CI runs it against the
checked-in snapshot.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

SUMMARY_SCHEMA = "repro-bench-summary/v1"

#: Per-benchmark statistics kept in the compact summary.
SUMMARY_STATS = ("median", "stddev", "mean", "rounds")

#: The benches that exercise the configuration-time pipeline this file
#: tracks: Table 1 searches, the heuristic ablation, and the fixed-point
#: solver kernels.
ROUTING_BENCHES = (
    "benchmarks/test_bench_table1.py",
    "benchmarks/test_bench_heuristic_ablation.py",
    "benchmarks/test_bench_fixedpoint.py",
    "benchmarks/test_bench_routing_strategies.py",
)


def summarize(raw: dict) -> dict:
    """Compact summary of a raw pytest-benchmark report."""
    benches = []
    for bench in raw["benchmarks"]:
        stats = bench["stats"]
        benches.append(
            {
                "name": bench["name"],
                **{key: stats[key] for key in SUMMARY_STATS},
            }
        )
    benches.sort(key=lambda b: b["name"])
    return {"schema": SUMMARY_SCHEMA, "benchmarks": benches}


def validate_summary(data: dict) -> list:
    """Schema violations in a summary dict (empty list = valid)."""
    problems = []
    if data.get("schema") != SUMMARY_SCHEMA:
        problems.append(
            f"schema is {data.get('schema')!r}, expected {SUMMARY_SCHEMA!r}"
        )
    benches = data.get("benchmarks")
    if not isinstance(benches, list) or not benches:
        problems.append("benchmarks must be a non-empty list")
        return problems
    seen = set()
    for i, bench in enumerate(benches):
        if not isinstance(bench, dict):
            problems.append(f"benchmarks[{i}] is not an object")
            continue
        name = bench.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"benchmarks[{i}] missing name")
        elif name in seen:
            problems.append(f"duplicate benchmark name {name!r}")
        else:
            seen.add(name)
        for key in SUMMARY_STATS:
            value = bench.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(
                    f"benchmarks[{i}] ({name}): {key} must be a "
                    f"non-negative number, got {value!r}"
                )
    return problems


def median_times(path: pathlib.Path) -> dict:
    """name -> median seconds, accepting summary or raw format."""
    data = json.loads(path.read_text())
    if data.get("schema") == SUMMARY_SCHEMA:
        return {b["name"]: b["median"] for b in data["benchmarks"]}
    return {
        b["name"]: b["stats"]["median"] for b in data["benchmarks"]
    }


def run_snapshot(output: pathlib.Path, benches, *, full: bool) -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    raw_path = output if full else output.with_suffix(".raw.json")
    cmd = [
        sys.executable, "-m", "pytest", *benches, "-q",
        f"--benchmark-json={raw_path}",
    ]
    print("+", " ".join(cmd))
    result = subprocess.run(cmd, cwd=REPO, env=env)
    if result.returncode != 0:
        return result.returncode
    raw = json.loads(raw_path.read_text())
    if full:
        print(f"wrote {output} ({len(raw['benchmarks'])} benchmarks, raw)")
        return 0
    summary = summarize(raw)
    output.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    raw_path.unlink()
    print(
        f"wrote {output} "
        f"({len(summary['benchmarks'])} benchmarks, compact summary)"
    )
    return 0


def compare(snapshot: pathlib.Path, benches) -> int:
    baseline = median_times(snapshot)
    fresh = snapshot.with_suffix(".current.json")
    code = run_snapshot(fresh, benches, full=False)
    if code != 0:
        return code
    current = median_times(fresh)
    width = max(map(len, current), default=0)
    for name, median in sorted(current.items()):
        base = baseline.get(name)
        if base:
            print(f"{name:<{width}}  {median:10.4g}s  {base / median:6.2f}x")
        else:
            print(f"{name:<{width}}  {median:10.4g}s  (new)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default=str(REPO / "BENCH_routing.json"),
        help="snapshot path (default: BENCH_routing.json at the repo root)",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="write the raw pytest-benchmark JSON instead of the summary",
    )
    parser.add_argument(
        "--compare", metavar="SNAPSHOT", default=None,
        help="re-run and print speedups against a previous snapshot",
    )
    parser.add_argument(
        "--validate", metavar="FILE", default=None,
        help="validate a summary file against the schema and exit",
    )
    parser.add_argument(
        "benches", nargs="*", default=list(ROUTING_BENCHES),
        help="bench files to run (default: the routing/analysis set)",
    )
    args = parser.parse_args(argv)
    if args.validate:
        problems = validate_summary(
            json.loads(pathlib.Path(args.validate).read_text())
        )
        for problem in problems:
            print(f"INVALID: {problem}")
        if not problems:
            print(f"{args.validate}: valid {SUMMARY_SCHEMA}")
        return 1 if problems else 0
    if args.compare:
        return compare(pathlib.Path(args.compare), args.benches)
    return run_snapshot(
        pathlib.Path(args.output), args.benches, full=args.full
    )


if __name__ == "__main__":
    raise SystemExit(main())
