"""Ext-M: scheduling ablation — why the guarantees need static priority.

Same traffic (voice + two oversubscribing bulk aggressors through a hub),
two disciplines.  Under the paper's class-based static priority the voice
class keeps microsecond-scale delays; under FIFO it inherits the bulk
queue.
"""

import pytest

from repro.experiments import format_table
from repro.simulation import PacketPattern, Simulator
from repro.topology import LinkServerGraph, star_network
from repro.traffic import ClassRegistry, FlowSpec, TrafficClass, voice_class


@pytest.fixture(scope="module")
def setup():
    bulk = TrafficClass(
        "bulk", burst=200_000, rate=55e6, deadline=10.0, priority=9
    )
    registry = ClassRegistry([voice_class(), bulk])
    return LinkServerGraph(star_network(4)), registry


def _build(graph, registry, scheduling):
    sim = Simulator(graph, registry, scheduling=scheduling)
    for i in range(10):
        sim.add_flow(
            FlowSpec(f"v{i}", "voice", "leaf0", "leaf3"),
            ["leaf0", "hub", "leaf3"],
            PacketPattern("greedy", packet_size=640, seed=i),
        )
    for b, leaf in enumerate(("leaf1", "leaf2")):
        sim.add_flow(
            FlowSpec(f"b{b}", "bulk", leaf, "leaf3"),
            [leaf, "hub", "leaf3"],
            PacketPattern("greedy", packet_size=12_000, seed=99 + b),
        )
    return sim


@pytest.mark.parametrize("scheduling", ["priority", "fifo"])
def test_bench_discipline_timing(benchmark, setup, scheduling):
    graph, registry = setup
    report = benchmark.pedantic(
        lambda: _build(graph, registry, scheduling).run(horizon=0.3),
        rounds=2,
        iterations=1,
    )
    assert report.conserved


def test_bench_discipline_report(benchmark, setup, capsys):
    graph, registry = setup

    def run_both():
        return (
            _build(graph, registry, "priority").run(horizon=0.3),
            _build(graph, registry, "fifo").run(horizon=0.3),
        )

    prio, fifo = benchmark.pedantic(run_both, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(
            format_table(
                ["metric", "static priority (paper)", "FIFO"],
                [
                    ["voice worst delay",
                     f"{prio.max_e2e('voice') * 1e6:.1f} us",
                     f"{fifo.max_e2e('voice') * 1e6:.1f} us"],
                    ["voice jitter",
                     f"{prio.jitter('voice') * 1e6:.1f} us",
                     f"{fifo.jitter('voice') * 1e6:.1f} us"],
                    ["bulk mean delay",
                     f"{prio.mean_e2e('bulk') * 1e3:.2f} ms",
                     f"{fifo.mean_e2e('bulk') * 1e3:.2f} ms"],
                ],
                title="Ext-M: scheduling discipline under bulk overload",
            )
        )
    assert fifo.max_e2e("voice") > 2 * prio.max_e2e("voice")
