"""Ext-D: multi-class delay bounds (Section 5.4, Theorem 5).

Voice + video + best-effort on the MCI backbone with shortest-path
routes: per-class worst-case end-to-end bounds, the proportional
utilization maximization, and solver cost.
"""

import pytest

from repro.analysis import multi_class_delays
from repro.config import maximize_multiclass_scale
from repro.experiments import format_table
from repro.traffic import ClassRegistry, TrafficClass, video_class, voice_class

ALPHAS = {"voice": 0.10, "video": 0.20}


@pytest.fixture(scope="module")
def registry():
    return ClassRegistry(
        [voice_class(), video_class(), TrafficClass.best_effort()]
    )


@pytest.fixture(scope="module")
def routes(sp_routes):
    shared = list(sp_routes.values())
    return {"voice": shared, "video": shared}


def test_bench_multiclass_solve(benchmark, scenario, registry, routes,
                                capsys):
    result = benchmark(
        multi_class_delays, scenario.graph, routes, registry, ALPHAS
    )
    rows = [
        [
            name,
            f"{ALPHAS[name]:.2f}",
            f"{c.deadline * 1e3:.0f} ms",
            f"{c.worst_route_delay * 1e3:.2f} ms",
            f"{c.slack * 1e3:.2f} ms",
        ]
        for name, c in result.per_class.items()
    ]
    with capsys.disabled():
        print()
        print(
            format_table(
                ["class", "alpha", "deadline", "worst bound", "slack"],
                rows,
                title="Multi-class delay bounds (MCI, SP routes)",
            )
        )
    assert result.safe
    # Priority structure shows up in the bounds:
    assert (
        result.per_class["voice"].worst_route_delay
        < result.per_class["video"].worst_route_delay
    )


def test_bench_multiclass_scale_maximization(benchmark, scenario, registry,
                                             routes, capsys):
    result = benchmark.pedantic(
        maximize_multiclass_scale,
        args=(scenario.network, routes, registry, {"voice": 1.0, "video": 2.0}),
        kwargs={"resolution": 0.005},
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(
            f"max proportional scale: t = {result.scale:.3f} -> "
            + ", ".join(
                f"{k} = {v:.3f}" for k, v in sorted(result.alphas.items())
            )
        )
    assert result.verification.success
    assert sum(result.alphas.values()) <= 1.0
