"""Ext-B: maximum utilization vs leaky-bucket burst size.

Burstier sources consume more of the schedulable region; this sweep
quantifies the decay around the paper's T = 640-bit voice burst.
"""

import pytest

from repro.experiments import format_table, sweep_burst

BURSTS = (320.0, 640.0, 2560.0)


def test_bench_sweep_burst_bounds(benchmark, scenario, capsys):
    grid = (160.0, 320.0, 640.0, 1280.0, 2560.0, 5120.0)
    sweep = benchmark(sweep_burst, grid, scenario=scenario)
    with capsys.disabled():
        print()
        print(sweep.render())
    assert sweep.monotone_lower_bound(increasing=False)
    ubs = [p.upper_bound for p in sweep.points]
    assert ubs == sorted(ubs, reverse=True)


def test_bench_sweep_burst_with_searches(benchmark, scenario, capsys):
    sweep = benchmark.pedantic(
        sweep_burst,
        args=(BURSTS,),
        kwargs={
            "scenario": scenario,
            "include_searches": True,
            "resolution": 0.02,
        },
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(sweep.render())
    for p in sweep.points:
        assert p.shortest_path is not None and p.heuristic is not None
        assert p.lower_bound - 1e-9 <= p.shortest_path
        assert p.heuristic <= p.upper_bound + 1e-9
    # Burstier traffic cannot increase the achievable utilization.
    sps = [p.shortest_path for p in sweep.points]
    assert sps == sorted(sps, reverse=True)
