"""Figure 4: the MCI evaluation topology.

The paper's figure is a picture; the two properties it states and the
analysis consumes are the diameter ``L = 4`` and the maximum router degree
``N = 6``.  This bench rebuilds the topology, verifies both, and times
the build + property analysis.
"""

import pytest

from repro.experiments import format_table
from repro.topology import LinkServerGraph, analyze, mci_backbone


def test_bench_figure4_build(benchmark):
    net = benchmark(mci_backbone)
    assert net.num_routers == 18
    assert net.num_physical_links == 35


def test_bench_figure4_properties(benchmark, scenario, capsys):
    report = benchmark(analyze, scenario.network)
    with capsys.disabled():
        print()
        print(
            format_table(
                ["property", "paper", "measured"],
                [
                    ["diameter L", 4, report.diameter],
                    ["max degree N", 6, report.max_degree],
                    ["link capacity", "100 Mbps",
                     f"{report.capacity / 1e6:.0f} Mbps"],
                    ["routers", "-", report.num_routers],
                    ["link servers", "-", report.num_link_servers],
                ],
                title="Figure 4: topology properties",
            )
        )
    assert report.diameter == 4
    assert report.max_degree == 6
    assert report.capacity == 100e6


def test_bench_figure4_server_expansion(benchmark, scenario):
    graph = benchmark(LinkServerGraph, scenario.network)
    assert graph.num_servers == 70
    assert graph.uniform_fan_in() == 6
