"""Ext-C: ablation of the three heuristic components (Section 5.2).

The paper motivates three levers: distance-ordered pairs, cycle-avoiding
candidate preference, and min-delay choice.  This bench runs the safe
route selection at a utilization level (alpha = 0.48) above what
shortest-path routing survives, with each lever toggled, and reports which
variants still find a safe selection and at what delay margin.
"""

import pytest

from repro.experiments import format_table
from repro.routing import HeuristicOptions, SafeRouteSelector

ALPHA = 0.48

VARIANTS = {
    "full": HeuristicOptions(),
    "no-ordering": HeuristicOptions(order_by_distance=False),
    "no-acyclic": HeuristicOptions(prefer_acyclic=False),
    "no-min-delay": HeuristicOptions(min_delay_choice=False),
    "greedy-shortest": HeuristicOptions(
        order_by_distance=False,
        prefer_acyclic=False,
        min_delay_choice=False,
    ),
}


@pytest.fixture(scope="module")
def outcomes(scenario):
    results = {}
    for name, options in VARIANTS.items():
        selector = SafeRouteSelector(
            scenario.network, scenario.voice, options=options
        )
        results[name] = selector.select(scenario.pairs, ALPHA)
    return results


def test_bench_ablation_report(benchmark, outcomes, scenario, capsys):
    benchmark.pedantic(lambda: outcomes, rounds=1, iterations=1)
    rows = []
    for name, out in outcomes.items():
        rows.append(
            [
                name,
                "SAFE" if out.success else "FAIL",
                out.num_routed,
                f"{out.worst_route_delay * 1e3:.1f} ms",
                out.candidates_evaluated,
            ]
        )
    with capsys.disabled():
        print()
        print(
            format_table(
                ["variant", "verdict", "routed", "worst delay", "candidates"],
                rows,
                title=f"Heuristic ablation at alpha = {ALPHA}",
            )
        )
    # The full heuristic must survive this level...
    assert outcomes["full"].success
    # ...and dominate every variant that also survives.
    for name, out in outcomes.items():
        if out.success:
            assert (
                outcomes["full"].worst_route_delay
                <= out.worst_route_delay + 1e-9
            )


@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_bench_ablation_timing(benchmark, scenario, variant):
    """Selection cost of each variant at a moderate utilization."""
    selector = SafeRouteSelector(
        scenario.network, scenario.voice, options=VARIANTS[variant]
    )
    out = benchmark.pedantic(
        selector.select,
        args=(scenario.pairs, 0.40),
        rounds=1,
        iterations=1,
    )
    assert out.success
