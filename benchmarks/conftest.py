"""Shared fixtures for the benchmark harness.

Run with::

    pytest benchmarks/ --benchmark-only

Each bench regenerates one table/figure of the paper (or an extension
experiment from DESIGN.md) and prints the regenerated rows alongside the
paper's values, in addition to timing the underlying computation.
"""

from __future__ import annotations

import pytest

from repro.experiments import paper_scenario
from repro.routing import shortest_path_routes


@pytest.fixture(scope="session")
def scenario():
    """The Section 6 evaluation setup (MCI + VoIP class)."""
    return paper_scenario()


@pytest.fixture(scope="session")
def sp_routes(scenario):
    return shortest_path_routes(scenario.network, scenario.pairs)
