"""Ext-A: maximum utilization vs end-to-end deadline.

Extends Table 1 along the deadline axis: the Theorem 4 interval and both
search columns as ``D`` varies around the paper's 100 ms operating point.
"""

import pytest

from repro.experiments import format_table, sweep_deadline

DEADLINES = (0.06, 0.10, 0.20)


def test_bench_sweep_deadline_bounds(benchmark, scenario, capsys):
    """Analytic columns over a denser deadline grid."""
    grid = (0.04, 0.06, 0.08, 0.10, 0.15, 0.20, 0.30, 0.40)
    sweep = benchmark(sweep_deadline, grid, scenario=scenario)
    with capsys.disabled():
        print()
        print(sweep.render())
    assert sweep.monotone_lower_bound(increasing=True)


def test_bench_sweep_deadline_with_searches(benchmark, scenario, capsys):
    """Search columns at three deadlines (coarse resolution for speed)."""
    sweep = benchmark.pedantic(
        sweep_deadline,
        args=(DEADLINES,),
        kwargs={
            "scenario": scenario,
            "include_searches": True,
            "resolution": 0.02,
        },
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(sweep.render())
    for p in sweep.points:
        assert p.shortest_path is not None and p.heuristic is not None
        assert p.lower_bound - 1e-9 <= p.shortest_path
        assert p.heuristic <= p.upper_bound + 1e-9
        assert p.heuristic >= p.shortest_path - 0.02
    # More deadline headroom never shrinks the achievable utilization.
    sps = [p.shortest_path for p in sweep.points]
    assert sps == sorted(sps)
