"""Ext-Q: resilience — link-failure repair under the live certificate.

Fail links of the configured MCI network one at a time (and in a
sequential cascade) and measure how often the Section 5.2 repair finds
safe replacement routes *without lowering the utilization assignment*,
plus the cost of a repair.
"""

import pytest

from repro.config import configure
from repro.config.repair import repair_after_link_failure
from repro.errors import TopologyError
from repro.experiments import format_table

ALPHA = 0.30


@pytest.fixture(scope="module")
def full_cfg(scenario):
    return configure(
        scenario.network,
        scenario.registry,
        {"voice": ALPHA},
        routing="shortest-path",
    )


def test_bench_single_failure_sweep(benchmark, full_cfg, scenario, capsys):
    """Try every single-link failure once; report the survival rate."""
    links = []
    seen = set()
    for link in scenario.network.directed_links():
        if frozenset(link.key) not in seen:
            seen.add(frozenset(link.key))
            links.append(link.key)

    def sweep():
        outcomes = []
        for key in links:
            try:
                result = repair_after_link_failure(full_cfg, key)
            except TopologyError:
                outcomes.append((key, "bridge", 0))
                continue
            outcomes.append(
                (
                    key,
                    "repaired" if result.success else "FAILED",
                    len(result.affected_pairs),
                )
            )
        return outcomes

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    repaired = sum(1 for _, verdict, _ in outcomes if verdict == "repaired")
    failed = sum(1 for _, verdict, _ in outcomes if verdict == "FAILED")
    bridges = sum(1 for _, verdict, _ in outcomes if verdict == "bridge")
    worst = max(outcomes, key=lambda o: o[2])
    with capsys.disabled():
        print()
        print(
            format_table(
                ["metric", "value"],
                [
                    ["links tried", len(outcomes)],
                    ["repaired at same alpha", repaired],
                    ["unrepairable", failed],
                    ["bridges (would disconnect)", bridges],
                    ["most routes broken by one link",
                     f"{worst[2]} ({worst[0][0]}–{worst[0][1]})"],
                ],
                title=f"Ext-Q: single-link failures at alpha = {ALPHA}",
            )
        )
    # The MCI mesh at the Theorem-4-ish level absorbs every single
    # failure without touching the utilization assignment.
    assert failed == 0
    assert repaired == len(outcomes) - bridges


def test_bench_cascade(benchmark, scenario, capsys):
    """Sequential failures: repair after each, until repair fails."""
    cascade = [
        ("Chicago", "NewYork"),
        ("Atlanta", "WashingtonDC"),
        ("Denver", "KansasCity"),
    ]

    def run():
        cfg = configure(
            scenario.network,
            scenario.registry,
            {"voice": ALPHA},
            routing="shortest-path",
        )
        survived = 0
        for link in cascade:
            result = repair_after_link_failure(cfg, link)
            if not result.success:
                break
            cfg = result.repaired
            survived += 1
        return survived, cfg

    survived, cfg = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(
            f"Ext-Q cascade: survived {survived}/{len(cascade)} sequential "
            f"failures at alpha = {ALPHA}; final verification: "
            f"{'OK' if cfg.verification.success else 'FAIL'}"
        )
    assert survived == len(cascade)
    assert cfg.verification.success
