"""The checked-in benchmark snapshot is a valid compact summary.

Guards the ``repro-bench-summary/v1`` contract: bench-smoke fails if a
raw 60k-line pytest-benchmark report (or anything else malformed) is
ever committed as ``BENCH_routing.json`` again.
"""

import json
import pathlib

from run_baseline import (
    SUMMARY_SCHEMA,
    SUMMARY_STATS,
    summarize,
    validate_summary,
)

SNAPSHOT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_routing.json"


def test_checked_in_snapshot_is_valid_summary():
    data = json.loads(SNAPSHOT.read_text())
    assert validate_summary(data) == []
    assert data["schema"] == SUMMARY_SCHEMA


def test_snapshot_is_compact():
    # The whole point: per-bench stats only, no raw timing arrays.
    data = json.loads(SNAPSHOT.read_text())
    for bench in data["benchmarks"]:
        assert set(bench) == {"name", *SUMMARY_STATS}


def test_summarize_produces_valid_summary():
    raw = {
        "benchmarks": [
            {
                "name": "bench_b",
                "stats": {
                    "median": 0.2, "stddev": 0.01, "mean": 0.21,
                    "rounds": 5, "data": [0.2] * 5, "min": 0.19,
                },
            },
            {
                "name": "bench_a",
                "stats": {
                    "median": 0.1, "stddev": 0.0, "mean": 0.1,
                    "rounds": 3, "data": [0.1] * 3, "min": 0.1,
                },
            },
        ]
    }
    summary = summarize(raw)
    assert validate_summary(summary) == []
    # Sorted by name, raw data arrays dropped.
    assert [b["name"] for b in summary["benchmarks"]] == [
        "bench_a", "bench_b",
    ]
    assert all("data" not in b for b in summary["benchmarks"])


def test_validate_summary_catches_violations():
    assert validate_summary({"schema": "nope", "benchmarks": []})
    bad_stat = {
        "schema": SUMMARY_SCHEMA,
        "benchmarks": [
            {"name": "x", "median": -1, "stddev": 0, "mean": 0,
             "rounds": 1},
        ],
    }
    assert any("median" in p for p in validate_summary(bad_stat))
    dupe = {
        "schema": SUMMARY_SCHEMA,
        "benchmarks": [
            {"name": "x", "median": 1, "stddev": 0, "mean": 1,
             "rounds": 1},
            {"name": "x", "median": 1, "stddev": 0, "mean": 1,
             "rounds": 1},
        ],
    }
    assert any("duplicate" in p for p in validate_summary(dupe))
