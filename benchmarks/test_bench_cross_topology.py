"""Ext-H: the Table 1 experiment on a second real topology (NSFNET).

Checks that the paper's SP-vs-heuristic result is not an artifact of the
MCI layout: on NSFNET (L = 3, N = 4) the same four columns are computed
and the same ordering must hold.
"""

import pytest

from repro.config import (
    max_utilization_heuristic,
    max_utilization_shortest_path,
    utilization_bounds,
)
from repro.experiments import format_table
from repro.topology import analyze, nsfnet_backbone
from repro.traffic import all_ordered_pairs, voice_class


@pytest.fixture(scope="module")
def nsfnet_setup():
    net = nsfnet_backbone()
    report = analyze(net)
    return net, report, voice_class(), all_ordered_pairs(net)


def test_bench_nsfnet_bounds(benchmark, nsfnet_setup):
    net, report, voice, pairs = nsfnet_setup
    b = benchmark(
        utilization_bounds,
        report.max_degree,
        report.diameter,
        voice.burst,
        voice.rate,
        voice.deadline,
    )
    assert 0 < b.lower <= b.upper <= 1


def test_bench_nsfnet_table(benchmark, nsfnet_setup, capsys):
    net, report, voice, pairs = nsfnet_setup

    def run():
        bounds = utilization_bounds(
            report.max_degree, report.diameter,
            voice.burst, voice.rate, voice.deadline,
        )
        sp = max_utilization_shortest_path(
            net, pairs, voice, resolution=0.01
        )
        heur = max_utilization_heuristic(net, pairs, voice, resolution=0.01)
        return bounds, sp, heur

    bounds, sp, heur = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(
            format_table(
                ["topology", "L", "N", "LB", "SP", "heuristic", "UB"],
                [
                    [
                        "NSFNET",
                        report.diameter,
                        report.max_degree,
                        f"{bounds.lower:.3f}",
                        f"{sp.alpha:.3f}",
                        f"{heur.alpha:.3f}",
                        f"{bounds.upper:.3f}",
                    ],
                    ["MCI (paper)", 4, 6, "0.300", "0.402", "0.503",
                     "0.609"],
                ],
                title="Ext-H: Table 1 across topologies",
            )
        )
    # The paper's qualitative result must transfer:
    assert bounds.lower - 1e-9 <= sp.alpha
    assert heur.alpha >= sp.alpha
    assert heur.alpha <= bounds.upper + 1e-9


def test_bench_cross_topology_parallel(benchmark, nsfnet_setup):
    """Ext-H rows via cross_topology_table with workers=2.

    Row order must match input order regardless of completion order.
    """
    from repro.experiments import cross_topology_table
    from repro.topology import mci_backbone

    net, report, voice, pairs = nsfnet_setup
    topologies = [("NSFNET", net), ("MCI", mci_backbone())]

    def run():
        return cross_topology_table(
            topologies, voice, resolution=0.01, workers=2
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    assert [r.name for r in rows] == ["NSFNET", "MCI"]
    assert all(r.ordering_holds for r in rows)
